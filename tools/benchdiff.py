#!/usr/bin/env python3
"""Compare two sv-bench JSON reports and flag performance regressions.

Usage:
    tools/benchdiff.py baseline.json current.json [--threshold=0.30]
        [--threshold-map fig1=0.30,fig4=0.25] [--fail-on-missing-row]
    tools/benchdiff.py --validate-only file.json [file2.json ...]

Rows are matched by (name, params). For each matched row every comparable
metric is diffed: throughput-like metrics regress when the current value
drops more than --threshold below baseline; latency/time-like metrics
regress when the current value rises more than --threshold above baseline.

--threshold-map overrides the threshold per figure: keys are matched as
prefixes of the report's 'bench' name (fig4=0.25 applies to
fig4_mix801010), so one CI loop can gate every figure at its own noise
floor. --fail-on-missing-row turns "row only in baseline" from a warning
into a failure: a silently vanished row (a renamed column, a dropped
thread count) would otherwise pass the gate with nothing compared — which
is how a baseline refresh that forgets a configuration goes unnoticed.

Exit codes: 0 = ok (or only improvements), 1 = regression detected, a
baseline row is missing under --fail-on-missing-row, or a file failed
schema validation, 2 = usage error.

Schema: see docs/OBSERVABILITY.md and src/benchutil/json_report.h.
"""
import argparse
import json
import sys

SCHEMA_NAME = "sv-bench"
SUPPORTED_VERSIONS = {1}

# Metric name -> direction. True = higher is better.
HIGHER_BETTER = {
    "throughput_mops",
    "metrics.range_kops",
    "metrics.mtxn_per_s",
    "metrics.items_per_second",
}
LOWER_BETTER_PREFIXES = ("latency_ns.",)
LOWER_BETTER = {
    "metrics.real_time_ns",
    "metrics.cpu_time_ns",
}
# Latency fields that are informational, not comparable (counts, extremes
# dominated by a single sample).
SKIP_FIELDS = {"latency_ns.count", "latency_ns.max"}

REQUIRED_BUILD_KEYS = ("compiler", "flags", "git_sha", "build_type",
                       "stats_enabled")


def validate(doc, path):
    """Return a list of human-readable schema errors (empty if valid)."""
    errs = []

    def err(msg):
        errs.append(f"{path}: {msg}")

    if not isinstance(doc, dict):
        err("top level is not an object")
        return errs
    if doc.get("schema") != SCHEMA_NAME:
        err(f"schema is {doc.get('schema')!r}, expected {SCHEMA_NAME!r}")
    if doc.get("schema_version") not in SUPPORTED_VERSIONS:
        err(f"unsupported schema_version {doc.get('schema_version')!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        err("missing/empty 'bench' name")
    build = doc.get("build")
    if not isinstance(build, dict):
        err("missing 'build' object")
    else:
        for k in REQUIRED_BUILD_KEYS:
            if k not in build:
                err(f"build missing key {k!r}")
    if not isinstance(doc.get("config"), dict):
        err("missing 'config' object")
    results = doc.get("results")
    if not isinstance(results, list):
        err("missing 'results' array")
        return errs
    for i, row in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(row, dict):
            err(f"{where} is not an object")
            continue
        if not isinstance(row.get("name"), str) or not row.get("name"):
            err(f"{where} missing/empty 'name'")
        if not isinstance(row.get("params"), dict):
            err(f"{where} missing 'params' object")
        payload = [k for k in ("throughput_mops", "thread_mops",
                               "latency_ns", "metrics", "stats")
                   if k in row]
        if not payload:
            err(f"{where} ({row.get('name')}) has no measurement payload")
        if "throughput_mops" in row and \
                not isinstance(row["throughput_mops"], (int, float)):
            err(f"{where} throughput_mops is not numeric")
        for obj_key in ("latency_ns", "metrics", "stats"):
            if obj_key in row:
                obj = row[obj_key]
                if not isinstance(obj, dict):
                    err(f"{where} {obj_key} is not an object")
                    continue
                for k, v in obj.items():
                    if not isinstance(v, (int, float)):
                        err(f"{where} {obj_key}.{k} is not numeric")
    return errs


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"benchdiff: cannot read {path}: {e}", file=sys.stderr)
        return None


def row_key(row):
    params = row.get("params") or {}
    return (row.get("name", ""),
            tuple(sorted((k, repr(v)) for k, v in params.items())))


def comparable_metrics(row):
    """Yield (metric_name, value, higher_is_better) for a result row."""
    if isinstance(row.get("throughput_mops"), (int, float)):
        yield "throughput_mops", float(row["throughput_mops"]), True
    for obj_key in ("metrics", "latency_ns"):
        obj = row.get(obj_key)
        if not isinstance(obj, dict):
            continue
        for k, v in obj.items():
            name = f"{obj_key}.{k}"
            if name in SKIP_FIELDS or not isinstance(v, (int, float)):
                continue
            if name in HIGHER_BETTER:
                yield name, float(v), True
            elif name in LOWER_BETTER or \
                    name.startswith(LOWER_BETTER_PREFIXES):
                yield name, float(v), False
            # Unknown metrics (orphans_left, bytes, abort_rate, iterations)
            # carry no universal better-direction; they are not compared.


def fmt_key(key):
    name, params = key
    if not params:
        return name
    return name + "{" + ", ".join(f"{k}={v}" for k, v in params) + "}"


def compare(base_doc, cur_doc, threshold, fail_on_missing_row=False):
    base = {row_key(r): r for r in base_doc["results"]}
    cur = {row_key(r): r for r in cur_doc["results"]}
    regressions = 0
    compared = 0

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    missing_tag = "MISSING ROW" if fail_on_missing_row else "warning"
    for k in only_base:
        print(f"  {missing_tag}: row only in baseline: {fmt_key(k)}")
    for k in only_cur:
        print(f"  warning: row only in current:  {fmt_key(k)}")
    if fail_on_missing_row:
        regressions += len(only_base)

    print(f"  {'row':<44} {'metric':<26} {'baseline':>12} "
          f"{'current':>12} {'delta':>8}")
    for key in (k for k in base if k in cur):
        base_metrics = dict((n, (v, hb))
                            for n, v, hb in comparable_metrics(base[key]))
        for name, cur_val, hb in comparable_metrics(cur[key]):
            if name not in base_metrics:
                continue
            base_val, _ = base_metrics[name]
            if base_val == 0:
                continue
            delta = (cur_val - base_val) / base_val
            regressed = (delta < -threshold) if hb else (delta > threshold)
            compared += 1
            tag = "  REGRESSION" if regressed else ""
            print(f"  {fmt_key(key):<44} {name:<26} {base_val:>12.4g} "
                  f"{cur_val:>12.4g} {delta:>+7.1%}{tag}")
            if regressed:
                regressions += 1
    print(f"\n  {compared} metric(s) compared, {regressions} failure(s) "
          f"(threshold {threshold:.0%})")
    return regressions


def parse_threshold_map(spec, error):
    """Parse 'fig1=0.30,fig4=0.25' into an ordered {prefix: threshold}."""
    out = {}
    for item in filter(None, (s.strip() for s in spec.split(","))):
        key, sep, val = item.partition("=")
        try:
            if not sep or not key:
                raise ValueError
            out[key] = float(val)
            if out[key] < 0:
                raise ValueError
        except ValueError:
            error(f"--threshold-map entry {item!r} is not PREFIX=FLOAT>=0")
    return out


def resolve_threshold(bench, default, tmap):
    """Longest matching prefix of the bench name wins; else the default."""
    best = None
    for prefix, th in tmap.items():
        if bench.startswith(prefix) and \
                (best is None or len(prefix) > len(best)):
            best, chosen = prefix, th
    return chosen if best is not None else default


def main():
    ap = argparse.ArgumentParser(
        description="Compare sv-bench JSON reports / validate their schema.")
    ap.add_argument("files", nargs="+", metavar="FILE",
                    help="baseline.json current.json, or files to validate")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="relative regression threshold (default 0.30)")
    ap.add_argument("--threshold-map", default="", metavar="P=F[,P=F...]",
                    help="per-figure thresholds keyed by a prefix of the "
                         "report's 'bench' name, e.g. fig1=0.30,fig4=0.25; "
                         "longest matching prefix wins, --threshold is the "
                         "fallback")
    ap.add_argument("--fail-on-missing-row", action="store_true",
                    help="fail (exit 1) when a baseline row has no "
                         "counterpart in current instead of warning")
    ap.add_argument("--validate-only", action="store_true",
                    help="only check schema validity of each FILE")
    args = ap.parse_args()

    if args.threshold < 0:
        ap.error("--threshold must be non-negative")
    threshold_map = parse_threshold_map(args.threshold_map, ap.error)

    docs = []
    failed = False
    for path in args.files:
        doc = load(path)
        errs = validate(doc, path) if doc is not None else ["unreadable"]
        if errs:
            failed = True
            for e in errs:
                print(f"benchdiff: invalid: {e}", file=sys.stderr)
        else:
            docs.append(doc)
            if args.validate_only:
                print(f"{path}: valid {SCHEMA_NAME} v"
                      f"{doc['schema_version']} ({doc['bench']}, "
                      f"{len(doc['results'])} rows)")
    if args.validate_only:
        return 1 if failed else 0

    if len(args.files) != 2:
        ap.error("comparison mode needs exactly 2 files "
                 "(or use --validate-only)")
    if failed:
        return 1
    base_doc, cur_doc = docs
    if base_doc["bench"] != cur_doc["bench"]:
        print(f"benchdiff: warning: comparing different benches "
              f"({base_doc['bench']} vs {cur_doc['bench']})")
    threshold = resolve_threshold(base_doc["bench"], args.threshold,
                                  threshold_map)
    print(f"== benchdiff: {base_doc['bench']} "
          f"[{base_doc['build'].get('git_sha')}] vs "
          f"[{cur_doc['build'].get('git_sha')}] "
          f"(threshold {threshold:.0%}) ==")
    return 1 if compare(base_doc, cur_doc, threshold,
                        args.fail_on_missing_row) else 0


if __name__ == "__main__":
    sys.exit(main())
