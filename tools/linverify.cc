// linverify: offline linearizability re-check of a dumped history.
//
// Reads the line-oriented history format written by HistoryRecorder /
// opfuzz --lincheck (see src/check/history.h) and runs the same WGL checker
// the online harness uses, so a dumped violation is a standalone,
// shareable, re-verifiable artifact:
//
//   build/tools/linverify --input=lincheck-fail-seed7-w2.hist
//
// Exit codes: 0 = linearizable, 1 = violation (or search budget
// exhausted), 2 = bad arguments / unreadable or malformed input.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>

#include "benchutil/options.h"
#include "check/wgl.h"

int main(int argc, char** argv) {
  constexpr int kExitOk = 0;
  constexpr int kExitCheckFailed = 1;
  constexpr int kExitUsage = 2;

  std::string input;
  sv::check::CheckOptions copt;
  bool quiet = false;
  try {
    sv::benchutil::Options opt(argc, argv);
    opt.reject_unknown({"input", "max-configs", "quiet"});
    if (opt.help_requested()) {
      std::printf(
          "linverify: offline WGL linearizability check of a history dump\n"
          "  --input=FILE       history file (from opfuzz --lincheck or\n"
          "                     HistoryRecorder::dump)\n"
          "  --max-configs=N    per-key search budget (default %zu)\n"
          "  --quiet            verdict only, no stats\n"
          "exit codes: 0 linearizable, 1 violation, 2 bad arguments\n",
          copt.max_configs_per_key);
      return kExitOk;
    }
    input = opt.str("input", "");
    copt.max_configs_per_key =
        opt.u64("max-configs", copt.max_configs_per_key);
    quiet = opt.flag("quiet");
    if (input.empty()) {
      std::fprintf(stderr, "linverify: --input=FILE is required\n");
      return kExitUsage;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "linverify: %s\n", e.what());
    return kExitUsage;
  }

  sv::check::History history;
  try {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "linverify: cannot open %s\n", input.c_str());
      return kExitUsage;
    }
    history = sv::check::History::load(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "linverify: %s\n", e.what());
    return kExitUsage;
  }

  const sv::check::CheckResult res = sv::check::check_history(history, copt);
  if (!quiet) {
    std::printf("%zu events, %zu keys, %zu configurations explored\n",
                res.ops_checked, res.keys_checked, res.configs_explored);
  }
  if (res.ok()) {
    std::printf("linearizable\n");
    return kExitOk;
  }
  std::printf("%s\n%s\n",
              res.verdict == sv::check::CheckResult::Verdict::kUndecided
                  ? "UNDECIDED (budget exhausted)"
                  : "NOT linearizable",
              res.explanation.c_str());
  return kExitCheckFailed;
}
