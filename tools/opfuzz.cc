// opfuzz: byte-string-driven operation fuzzer for the skip vector.
//
// Interprets a byte stream (stdin, a file, or an internal PRNG round) as a
// sequence of map operations executed against a std::map oracle, asserting
// agreement after every step and validating the structure periodically.
// The fixed byte->operation mapping makes any failure a replayable,
// shareable artifact, and the binary is directly usable as an AFL/honggfuzz
// target (file-input mode) without requiring libFuzzer at build time.
//
//   build/tools/opfuzz --rounds=1000            # PRNG self-fuzz
//   build/tools/opfuzz --input=crash.bin        # replay a byte string
//   afl-fuzz -i seeds -o out -- build/tools/opfuzz --input=@@
//
// With --fi-pyield / --fi-pfail (or an explicit --fi-schedule) each round
// also installs a deterministic fault-injection schedule seeded from the
// round seed, sweeping induced freeze failures and forced yields across the
// structural transition points (see docs/FAULT_INJECTION.md). A failing
// round replays exactly from its seed.
//
// --lincheck switches to concurrent linearizability checking: worker
// threads run a recorded random workload against the concurrent map in
// bounded windows; each window's merged history goes through the WGL
// checker (src/check/wgl.h). A rejected window is dumped to disk and
// tools/linverify re-checks the dump offline. Combine with a mutation
// schedule (e.g. --fi-schedule='pfail@mut-drop-merge=1') to verify the
// checker rejects seeded ordering bugs. See docs/LINEARIZABILITY.md.
//
// Exit codes: 0 = all checks passed, 1 = a check failed (mismatch, audit,
// or linearizability violation), 2 = bad arguments.
//
// Byte grammar (2 bytes per op):  [op | config-nibble] [key]
//   op % 8: 0,1 insert; 2 remove; 3 update; 4 lookup; 5 floor/ceiling;
//           6 range_for_each; 7 erase_range-ish (range_transform)
#include <barrier>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/options.h"
#include "check/wgl.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/adapters.h"
#include "core/skip_vector.h"
#include "debug/fault_inject.h"

namespace {

using Map = sv::core::SkipVectorSeq<std::uint64_t, std::uint64_t>;

constexpr int kExitOk = 0;
constexpr int kExitCheckFailed = 1;
constexpr int kExitUsage = 2;

int g_failures = 0;

#define FUZZ_CHECK(cond, what)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "MISMATCH at op %zu: %s\n", step, what);  \
      ++g_failures;                                                  \
      return false;                                                  \
    }                                                                \
  } while (0)

bool run_bytes(const std::vector<std::uint8_t>& bytes,
               const sv::core::Config& cfg, std::uint64_t audit_every) {
  Map map(cfg);
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::uint64_t value_seq = 1;

  auto audit = [&](std::size_t step) {
    const auto rep = map.validate_structure();
    if (!rep.ok()) {
      std::fprintf(stderr, "AUDIT FAILED at op %zu:\n%s\n", step,
                   rep.to_string().c_str());
      ++g_failures;
      return false;
    }
    return true;
  };

  for (std::size_t step = 0; step + 1 < bytes.size(); step += 2) {
    const std::uint8_t op = bytes[step] % 8;
    const std::uint64_t k = bytes[step + 1];
    switch (op) {
      case 0:
      case 1: {
        const std::uint64_t v = value_seq++;
        const bool expect = oracle.emplace(k, v).second;
        FUZZ_CHECK(map.insert(k, v) == expect, "insert result");
        break;
      }
      case 2:
        FUZZ_CHECK(map.remove(k) == (oracle.erase(k) > 0), "remove result");
        break;
      case 3: {
        const std::uint64_t v = value_seq++;
        auto it = oracle.find(k);
        const bool expect = it != oracle.end();
        if (expect) it->second = v;
        FUZZ_CHECK(map.update(k, v) == expect, "update result");
        break;
      }
      case 4: {
        auto got = map.lookup(k);
        auto it = oracle.find(k);
        FUZZ_CHECK(got.has_value() == (it != oracle.end()), "lookup presence");
        if (got) FUZZ_CHECK(*got == it->second, "lookup value");
        break;
      }
      case 5: {
        auto fl = map.floor(k);
        auto ub = oracle.upper_bound(k);
        if (ub == oracle.begin()) {
          FUZZ_CHECK(!fl.has_value(), "floor on empty prefix");
        } else {
          FUZZ_CHECK(fl.has_value() && fl->first == std::prev(ub)->first,
                     "floor key");
        }
        auto ce = map.ceiling(k);
        auto lb = oracle.lower_bound(k);
        if (lb == oracle.end()) {
          FUZZ_CHECK(!ce.has_value(), "ceiling past end");
        } else {
          FUZZ_CHECK(ce.has_value() && ce->first == lb->first, "ceiling key");
        }
        break;
      }
      case 6: {
        const std::uint64_t hi = k + bytes[step] / 8;
        std::size_t expect = 0;
        for (auto it = oracle.lower_bound(k);
             it != oracle.end() && it->first <= hi; ++it) {
          ++expect;
        }
        std::size_t got = map.range_for_each(k, hi, [](auto, auto) {});
        FUZZ_CHECK(got == expect, "range count");
        break;
      }
      default: {
        const std::uint64_t hi = k + bytes[step] / 8;
        map.range_transform(k, hi, [](std::uint64_t, std::uint64_t v) {
          return v + 1;
        });
        for (auto it = oracle.lower_bound(k);
             it != oracle.end() && it->first <= hi; ++it) {
          it->second += 1;
        }
        break;
      }
    }
    if (audit_every != 0 && step % audit_every == 0 && !audit(step)) {
      return false;
    }
  }
  // Final audit.
  std::size_t step = bytes.size();
  if (!audit(step)) return false;
  FUZZ_CHECK(map.size_approx() == oracle.size(), "final size");
  auto it = oracle.begin();
  bool contents_ok = true;
  map.for_each([&](std::uint64_t k, std::uint64_t v) {
    if (it == oracle.end() || it->first != k || it->second != v) {
      contents_ok = false;
    } else {
      ++it;
    }
  });
  FUZZ_CHECK(contents_ok && it == oracle.end(), "final contents");
  return true;
}

sv::core::Config config_from_seed(std::uint64_t seed) {
  sv::Xoshiro256 rng(seed);
  sv::core::Config cfg;
  cfg.layer_count = 1 + static_cast<std::uint32_t>(rng.next_below(6));
  cfg.target_data_vector_size =
      1 + static_cast<std::uint32_t>(rng.next_below(16));
  cfg.target_index_vector_size =
      1 + static_cast<std::uint32_t>(rng.next_below(16));
  cfg.merge_threshold_factor = static_cast<double>(rng.next_below(250)) / 100;
  return cfg;
}

// ---- Concurrent linearizability-checking mode (--lincheck) ----------------

struct LincheckParams {
  std::uint64_t threads = 4;
  std::uint64_t ops = 10'000;     // total per round, across threads
  std::uint64_t window = 2'500;   // ops per bounded checking window
  std::uint64_t keys = 128;       // key-space size
  std::uint64_t layers = 0;       // 0 = derive from the round seed
  std::uint64_t dvec = 0;         // data-vector target; 0 = from round seed
  std::string dump_prefix = "lincheck-fail";
};

using LinMap =
    sv::core::RecordingMap<sv::core::SkipVector<std::uint64_t, std::uint64_t>>;

// One thread's slice of one window: a deterministic random op mix. Values
// carry (thread, sequence) so every written value is unique -- stale reads
// are then distinguishable from legal ones.
void lincheck_worker(LinMap& map, const LincheckParams& p, std::uint64_t seed,
                     std::uint64_t tid, std::uint64_t window_index,
                     std::uint64_t ops_this_window) {
  sv::Xoshiro256 rng(sv::Xoshiro256(seed ^ (tid << 32) ^ window_index).next());
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < ops_this_window; ++i) {
    const std::uint64_t k = 1 + rng.next_below(p.keys);
    const std::uint64_t v =
        (tid << 48) | (window_index << 32) | (seq++ & 0xffffffffu);
    switch (rng.next_below(12)) {
      case 0:
      case 1:
      case 2:
      case 3:
        map.insert(k, v);
        break;
      case 4:
      case 5:
        map.remove(k);
        break;
      case 6:
        map.update(k, v);
        break;
      case 7: {
        const std::uint64_t hi = k + rng.next_below(16);
        map.range_for_each(k, hi, [](std::uint64_t, std::uint64_t) {});
        break;
      }
      case 8: {
        // Atomic batch: 2-4 ops over distinct keys, mixed puts/removes.
        // Every key of a committed batch is recorded with the batch's
        // interval, so the checker demands one point where all the
        // recorded per-key transitions are simultaneously legal.
        using BatchOp = sv::core::mvcc::BatchOp<std::uint64_t, std::uint64_t>;
        std::vector<BatchOp> batch;
        const std::uint64_t nops = 2 + rng.next_below(3);
        for (std::uint64_t b = 0; b < nops; ++b) {
          const std::uint64_t bk = 1 + rng.next_below(p.keys);
          const std::uint64_t bv =
              (tid << 48) | (window_index << 32) | (seq++ & 0xffffffffu);
          if (rng.next_below(3) == 0) {
            batch.push_back(BatchOp::remove(bk));
          } else {
            batch.push_back(BatchOp::put(bk, bv));
          }
        }
        map.apply_batch(batch);
        break;
      }
      case 9: {
        // Versioned snapshot scan (wait-free against writers).
        const std::uint64_t hi = k + rng.next_below(16);
        map.snapshot_range(k, hi, [](std::uint64_t, std::uint64_t) {});
        break;
      }
      default:
        map.lookup(k);
        break;
    }
  }
}

// Run one recorded round: `threads` workers over ceil(ops/window) barrier-
// separated windows, checking each window's merged history. Returns false
// (and dumps the history) on a rejected window.
bool lincheck_round(const LincheckParams& p, std::uint64_t round_seed,
                    double* record_seconds) {
  sv::core::Config cfg = config_from_seed(round_seed);
  if (p.layers != 0) cfg.layer_count = static_cast<std::uint32_t>(p.layers);
  if (p.dvec != 0) {
    cfg.target_data_vector_size = static_cast<std::uint32_t>(p.dvec);
  }
  sv::check::HistoryRecorder recorder;
  LinMap map(&recorder, cfg);

  const std::uint64_t windows = (p.ops + p.window - 1) / p.window;
  const std::uint64_t per_thread_window =
      (p.window + p.threads - 1) / p.threads;
  std::barrier sync(static_cast<std::ptrdiff_t>(p.threads + 1));
  bool round_ok = true;
  sv::WallTimer timer;
  double op_seconds = 0;

  // Ground a window's initial per-key state: the checker assumes nothing
  // about the map's content at window start (windows after the first begin
  // mid-life), so while the map is quiesced the main thread records one
  // lookup per key. These sequential reads precede every concurrent op in
  // real time and pin each key's starting state; workers only ever touch
  // keys in [1, keys].
  auto ground_window = [&map, &p] {
    for (std::uint64_t k = 1; k <= p.keys; ++k) map.lookup(k);
  };

  ground_window();  // window 0 starts from the freshly built (empty) map
  std::vector<std::thread> workers;
  for (std::uint64_t t = 0; t < p.threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t w = 0; w < windows; ++w) {
        lincheck_worker(map, p, round_seed, t, w, per_thread_window);
        sync.arrive_and_wait();  // window quiesced; main thread checks
        sync.arrive_and_wait();  // checking done; next window may start
      }
    });
  }

  for (std::uint64_t w = 0; w < windows; ++w) {
    sync.arrive_and_wait();
    op_seconds += timer.elapsed_seconds();
    const sv::check::History h = recorder.merge();
    const sv::check::CheckResult res = sv::check::check_history(h);
    if (!res.ok()) {
      const std::string path = p.dump_prefix + "-seed" +
                               std::to_string(round_seed) + "-w" +
                               std::to_string(w) + ".hist";
      std::ofstream out(path);
      h.dump(out);
      std::fprintf(stderr,
                   "LINEARIZABILITY %s in window %llu (seed %llu):\n%s\n"
                   "history dumped to %s (%zu events) -- verify offline "
                   "with: linverify --input=%s\n",
                   res.verdict == sv::check::CheckResult::Verdict::kUndecided
                       ? "UNDECIDED"
                       : "VIOLATION",
                   static_cast<unsigned long long>(w),
                   static_cast<unsigned long long>(round_seed),
                   res.explanation.c_str(), path.c_str(), h.events.size(),
                   path.c_str());
      round_ok = false;
    }
    recorder.clear();
    if (w + 1 < windows && round_ok) ground_window();
    timer.reset();
    sync.arrive_and_wait();
    if (!round_ok) {
      // Let the remaining windows run unchecked so workers can join; one
      // rejected window already fails the round.
      for (std::uint64_t rest = w + 1; rest < windows; ++rest) {
        sync.arrive_and_wait();
        recorder.clear();
        sync.arrive_and_wait();
      }
      break;
    }
  }
  for (auto& th : workers) th.join();
  if (record_seconds != nullptr) *record_seconds = op_seconds;
  return round_ok;
}

// Recorder overhead: the same workload (no checking), recorded vs not.
void lincheck_measure_overhead(const LincheckParams& p,
                               std::uint64_t round_seed) {
  auto run = [&](bool recorded) {
    sv::core::Config cfg = config_from_seed(round_seed);
    if (p.layers != 0) cfg.layer_count = static_cast<std::uint32_t>(p.layers);
    if (p.dvec != 0) {
      cfg.target_data_vector_size = static_cast<std::uint32_t>(p.dvec);
    }
    sv::check::HistoryRecorder recorder;
    LinMap map(recorded ? &recorder : nullptr, cfg);
    const std::uint64_t per_thread = (p.ops + p.threads - 1) / p.threads;
    sv::WallTimer timer;
    std::vector<std::thread> workers;
    for (std::uint64_t t = 0; t < p.threads; ++t) {
      workers.emplace_back([&, t] {
        lincheck_worker(map, p, round_seed, t, /*window_index=*/0, per_thread);
      });
    }
    for (auto& th : workers) th.join();
    return timer.elapsed_seconds();
  };
  const double bare = run(false);
  const double recorded = run(true);
  std::printf(
      "recorder overhead: bare %.3fs, recorded %.3fs (%+.1f%%), "
      "%.2f Mops/s recorded\n",
      bare, recorded, (recorded / bare - 1.0) * 100.0,
      static_cast<double>(p.ops) / recorded / 1e6);
}

int run_lincheck(const sv::benchutil::Options& opt, std::uint64_t rounds,
                 std::uint64_t seed0,
                 const std::function<void(std::uint64_t)>& install_schedule) {
  LincheckParams p;
  p.threads = opt.u64("threads", p.threads);
  p.ops = opt.u64("ops", p.ops);
  p.window = opt.u64("window", p.window);
  p.keys = opt.u64("keys", p.keys);
  p.layers = opt.u64("layers", p.layers);
  p.dvec = opt.u64("dvec", p.dvec);
  p.dump_prefix = opt.str("dump-prefix", p.dump_prefix);
  if (p.threads < 1 || p.ops < 1 || p.window < 1 || p.keys < 1) {
    std::fprintf(stderr, "--threads/--ops/--window/--keys must be >= 1\n");
    return kExitUsage;
  }

  for (std::uint64_t r = 0; r < rounds; ++r) {
    install_schedule(seed0 + r);
    double seconds = 0;
    sv::WallTimer round_timer;
    const bool ok = lincheck_round(p, seed0 + r, &seconds);
    if (!ok) {
      std::fprintf(stderr, "lincheck round %llu (seed %llu) FAILED\n",
                   static_cast<unsigned long long>(r),
                   static_cast<unsigned long long>(seed0 + r));
      ++g_failures;
    }
    std::printf("lincheck round %llu: %s, %llu ops x %llu threads, "
                "%.3fs total (%.3fs in ops)\n",
                static_cast<unsigned long long>(r), ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(p.ops),
                static_cast<unsigned long long>(p.threads),
                round_timer.elapsed_seconds(), seconds);
  }
  if (opt.flag("measure-overhead")) {
    sv::debug::FaultInjector::instance().clear();  // measure the clean map
    lincheck_measure_overhead(p, seed0);
  }
  return g_failures == 0 ? kExitOk : kExitCheckFailed;
}

}  // namespace

int main(int argc, char** argv) {
  // Bad arguments -- unknown flags, malformed values, unreadable inputs,
  // invalid schedules -- exit kExitUsage (2); check failures exit
  // kExitCheckFailed (1). CI smoke asserts the distinction.
  std::unique_ptr<sv::benchutil::Options> opt_holder;
  try {
    opt_holder = std::make_unique<sv::benchutil::Options>(argc, argv);
    opt_holder->reject_unknown(
        {"input", "rounds", "ops", "seed", "audit-every", "fi-pyield",
         "fi-pfail", "fi-schedule", "lincheck", "threads", "keys", "window",
         "layers", "dvec", "dump-prefix", "measure-overhead"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "opfuzz: %s\n", e.what());
    return kExitUsage;
  }
  const sv::benchutil::Options& opt = *opt_holder;
  if (opt.help_requested()) {
    std::printf(
        "opfuzz: byte-driven differential fuzzer (map vs std::map)\n"
        "  --input=FILE       replay a byte string from FILE\n"
        "  --rounds=N         PRNG self-fuzz rounds (default 200)\n"
        "  --ops=N            ops per round (default 4096)\n"
        "  --seed=N           starting seed (default 1)\n"
        "  --audit-every=N    full structural audit every N ops (default 512;"
        " 0 = final only)\n"
        "  --fi-pyield=F      per-round injection schedule: yield prob\n"
        "  --fi-pfail=F       per-round injection schedule: freeze-fail prob\n"
        "  --fi-schedule=S    explicit schedule for every round (overrides"
        " the two above)\n"
        "  --lincheck         concurrent linearizability-checking mode:\n"
        "    --threads=N --keys=N --window=N   workload shape (ops is the\n"
        "                       per-round total across threads; default\n"
        "                       10000 ops, 4 threads, window 2500, 128 keys)\n"
        "    --layers=N         fix the layer count (0 = from round seed)\n"
        "    --dvec=N           fix the data-vector target size (0 = from\n"
        "                       round seed)\n"
        "    --dump-prefix=P    rejected-history dump path prefix\n"
        "    --measure-overhead also time the workload with recording on/off\n"
        "exit codes: 0 ok, 1 check failed, 2 bad arguments\n");
    return kExitOk;
  }

  sv::debug::Schedule fixed_schedule;
  std::function<void(std::uint64_t)> install_schedule;
  std::uint64_t audit_every, rounds, ops, seed0;
  double fi_pyield, fi_pfail;
  std::string fi_spec, input;
  bool fi_active;
  try {
    audit_every = opt.u64("audit-every", 512);
    // Optional fault-injection sweep: every round runs under a deterministic
    // schedule derived from the round seed, so "round N FAILED" replays with
    // --seed=N --rounds=1 and the same --fi flags.
    fi_pyield = opt.f64("fi-pyield", 0.0);
    fi_pfail = opt.f64("fi-pfail", 0.0);
    fi_spec = opt.str("fi-schedule", "");
    fi_active = !fi_spec.empty() || fi_pyield > 0 || fi_pfail > 0;
    if (!fi_spec.empty()) {
      fixed_schedule = sv::debug::Schedule::parse(fi_spec);
    }
    input = opt.str("input", "");
    rounds = opt.u64("rounds", opt.flag("lincheck") ? 5 : 200);
    ops = opt.u64("ops", 4096);
    seed0 = opt.u64("seed", 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "opfuzz: %s\n", e.what());
    return kExitUsage;
  }
  install_schedule = [&fi_active, &fi_spec, &fixed_schedule, fi_pyield,
                      fi_pfail](std::uint64_t round_seed) {
    if (!fi_active) return;
    sv::debug::Schedule s;
    if (!fi_spec.empty()) {
      s = fixed_schedule;
    } else {
      s.seed = round_seed;
      s.yield_prob = fi_pyield;
      s.fail_prob = fi_pfail;
    }
    sv::debug::FaultInjector::instance().install(s);
  };

  if (opt.flag("lincheck")) {
    const int rc = run_lincheck(opt, rounds, seed0, install_schedule);
    if (fi_active) {
      std::printf("injection: %s\n",
                  sv::debug::FaultInjector::instance().report().c_str());
      sv::debug::FaultInjector::instance().clear();
    }
    return rc;
  }

  if (!input.empty()) {
    std::ifstream f(input, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", input.c_str());
      return kExitUsage;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
    const std::uint64_t seed = opt.u64("seed", 1);
    install_schedule(seed);
    const bool ok = run_bytes(bytes, config_from_seed(seed), audit_every);
    std::printf("%s (%zu bytes)\n", ok ? "ok" : "FAILED", bytes.size());
    return ok ? kExitOk : kExitCheckFailed;
  }

  for (std::uint64_t r = 0; r < rounds; ++r) {
    sv::Xoshiro256 rng(seed0 + r);
    std::vector<std::uint8_t> bytes(ops * 2);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    install_schedule(seed0 + r);
    if (!run_bytes(bytes, config_from_seed(seed0 + r), audit_every)) {
      std::fprintf(stderr, "round %llu (seed %llu) FAILED\n",
                   static_cast<unsigned long long>(r),
                   static_cast<unsigned long long>(seed0 + r));
    }
  }
  if (fi_active) {
    std::printf("injection: %s\n",
                sv::debug::FaultInjector::instance().report().c_str());
    sv::debug::FaultInjector::instance().clear();
  }
  std::printf("opfuzz: %llu rounds x %llu ops, %d failures\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(ops), g_failures);
  return g_failures == 0 ? kExitOk : kExitCheckFailed;
}
