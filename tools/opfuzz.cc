// opfuzz: byte-string-driven operation fuzzer for the skip vector.
//
// Interprets a byte stream (stdin, a file, or an internal PRNG round) as a
// sequence of map operations executed against a std::map oracle, asserting
// agreement after every step and validating the structure periodically.
// The fixed byte->operation mapping makes any failure a replayable,
// shareable artifact, and the binary is directly usable as an AFL/honggfuzz
// target (file-input mode) without requiring libFuzzer at build time.
//
//   build/tools/opfuzz --rounds=1000            # PRNG self-fuzz
//   build/tools/opfuzz --input=crash.bin        # replay a byte string
//   afl-fuzz -i seeds -o out -- build/tools/opfuzz --input=@@
//
// With --fi-pyield / --fi-pfail (or an explicit --fi-schedule) each round
// also installs a deterministic fault-injection schedule seeded from the
// round seed, sweeping induced freeze failures and forced yields across the
// structural transition points (see docs/FAULT_INJECTION.md). A failing
// round replays exactly from its seed.
//
// Byte grammar (2 bytes per op):  [op | config-nibble] [key]
//   op % 8: 0,1 insert; 2 remove; 3 update; 4 lookup; 5 floor/ceiling;
//           6 range_for_each; 7 erase_range-ish (range_transform)
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchutil/options.h"
#include "common/rng.h"
#include "core/skip_vector.h"
#include "debug/fault_inject.h"

namespace {

using Map = sv::core::SkipVectorSeq<std::uint64_t, std::uint64_t>;

int g_failures = 0;

#define FUZZ_CHECK(cond, what)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "MISMATCH at op %zu: %s\n", step, what);  \
      ++g_failures;                                                  \
      return false;                                                  \
    }                                                                \
  } while (0)

bool run_bytes(const std::vector<std::uint8_t>& bytes,
               const sv::core::Config& cfg, std::uint64_t audit_every) {
  Map map(cfg);
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::uint64_t value_seq = 1;

  auto audit = [&](std::size_t step) {
    const auto rep = map.validate_structure();
    if (!rep.ok()) {
      std::fprintf(stderr, "AUDIT FAILED at op %zu:\n%s\n", step,
                   rep.to_string().c_str());
      ++g_failures;
      return false;
    }
    return true;
  };

  for (std::size_t step = 0; step + 1 < bytes.size(); step += 2) {
    const std::uint8_t op = bytes[step] % 8;
    const std::uint64_t k = bytes[step + 1];
    switch (op) {
      case 0:
      case 1: {
        const std::uint64_t v = value_seq++;
        const bool expect = oracle.emplace(k, v).second;
        FUZZ_CHECK(map.insert(k, v) == expect, "insert result");
        break;
      }
      case 2:
        FUZZ_CHECK(map.remove(k) == (oracle.erase(k) > 0), "remove result");
        break;
      case 3: {
        const std::uint64_t v = value_seq++;
        auto it = oracle.find(k);
        const bool expect = it != oracle.end();
        if (expect) it->second = v;
        FUZZ_CHECK(map.update(k, v) == expect, "update result");
        break;
      }
      case 4: {
        auto got = map.lookup(k);
        auto it = oracle.find(k);
        FUZZ_CHECK(got.has_value() == (it != oracle.end()), "lookup presence");
        if (got) FUZZ_CHECK(*got == it->second, "lookup value");
        break;
      }
      case 5: {
        auto fl = map.floor(k);
        auto ub = oracle.upper_bound(k);
        if (ub == oracle.begin()) {
          FUZZ_CHECK(!fl.has_value(), "floor on empty prefix");
        } else {
          FUZZ_CHECK(fl.has_value() && fl->first == std::prev(ub)->first,
                     "floor key");
        }
        auto ce = map.ceiling(k);
        auto lb = oracle.lower_bound(k);
        if (lb == oracle.end()) {
          FUZZ_CHECK(!ce.has_value(), "ceiling past end");
        } else {
          FUZZ_CHECK(ce.has_value() && ce->first == lb->first, "ceiling key");
        }
        break;
      }
      case 6: {
        const std::uint64_t hi = k + bytes[step] / 8;
        std::size_t expect = 0;
        for (auto it = oracle.lower_bound(k);
             it != oracle.end() && it->first <= hi; ++it) {
          ++expect;
        }
        std::size_t got = map.range_for_each(k, hi, [](auto, auto) {});
        FUZZ_CHECK(got == expect, "range count");
        break;
      }
      default: {
        const std::uint64_t hi = k + bytes[step] / 8;
        map.range_transform(k, hi, [](std::uint64_t, std::uint64_t v) {
          return v + 1;
        });
        for (auto it = oracle.lower_bound(k);
             it != oracle.end() && it->first <= hi; ++it) {
          it->second += 1;
        }
        break;
      }
    }
    if (audit_every != 0 && step % audit_every == 0 && !audit(step)) {
      return false;
    }
  }
  // Final audit.
  std::size_t step = bytes.size();
  if (!audit(step)) return false;
  FUZZ_CHECK(map.size_approx() == oracle.size(), "final size");
  auto it = oracle.begin();
  bool contents_ok = true;
  map.for_each([&](std::uint64_t k, std::uint64_t v) {
    if (it == oracle.end() || it->first != k || it->second != v) {
      contents_ok = false;
    } else {
      ++it;
    }
  });
  FUZZ_CHECK(contents_ok && it == oracle.end(), "final contents");
  return true;
}

sv::core::Config config_from_seed(std::uint64_t seed) {
  sv::Xoshiro256 rng(seed);
  sv::core::Config cfg;
  cfg.layer_count = 1 + static_cast<std::uint32_t>(rng.next_below(6));
  cfg.target_data_vector_size =
      1 + static_cast<std::uint32_t>(rng.next_below(16));
  cfg.target_index_vector_size =
      1 + static_cast<std::uint32_t>(rng.next_below(16));
  cfg.merge_threshold_factor = static_cast<double>(rng.next_below(250)) / 100;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  sv::benchutil::Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "opfuzz: byte-driven differential fuzzer (map vs std::map)\n"
        "  --input=FILE       replay a byte string from FILE\n"
        "  --rounds=N         PRNG self-fuzz rounds (default 200)\n"
        "  --ops=N            ops per round (default 4096)\n"
        "  --seed=N           starting seed (default 1)\n"
        "  --audit-every=N    full structural audit every N ops (default 512;"
        " 0 = final only)\n"
        "  --fi-pyield=F      per-round injection schedule: yield prob\n"
        "  --fi-pfail=F       per-round injection schedule: freeze-fail prob\n"
        "  --fi-schedule=S    explicit schedule for every round (overrides"
        " the two above)\n");
    return 0;
  }
  const std::uint64_t audit_every = opt.u64("audit-every", 512);

  // Optional fault-injection sweep: every round runs under a deterministic
  // schedule derived from the round seed, so "round N FAILED" replays with
  // --seed=N --rounds=1 and the same --fi flags.
  const double fi_pyield = opt.f64("fi-pyield", 0.0);
  const double fi_pfail = opt.f64("fi-pfail", 0.0);
  const std::string fi_spec = opt.str("fi-schedule", "");
  const bool fi_active = !fi_spec.empty() || fi_pyield > 0 || fi_pfail > 0;
  sv::debug::Schedule fixed_schedule;
  if (!fi_spec.empty()) {
    try {
      fixed_schedule = sv::debug::Schedule::parse(fi_spec);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bad --fi-schedule: %s\n", e.what());
      return 2;
    }
  }
  auto install_schedule = [&](std::uint64_t round_seed) {
    if (!fi_active) return;
    sv::debug::Schedule s;
    if (!fi_spec.empty()) {
      s = fixed_schedule;
    } else {
      s.seed = round_seed;
      s.yield_prob = fi_pyield;
      s.fail_prob = fi_pfail;
    }
    sv::debug::FaultInjector::instance().install(s);
  };

  const std::string input = opt.str("input", "");
  if (!input.empty()) {
    std::ifstream f(input, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", input.c_str());
      return 2;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
    const std::uint64_t seed = opt.u64("seed", 1);
    install_schedule(seed);
    const bool ok = run_bytes(bytes, config_from_seed(seed), audit_every);
    std::printf("%s (%zu bytes)\n", ok ? "ok" : "FAILED", bytes.size());
    return ok ? 0 : 1;
  }

  const std::uint64_t rounds = opt.u64("rounds", 200);
  const std::uint64_t ops = opt.u64("ops", 4096);
  const std::uint64_t seed0 = opt.u64("seed", 1);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    sv::Xoshiro256 rng(seed0 + r);
    std::vector<std::uint8_t> bytes(ops * 2);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    install_schedule(seed0 + r);
    if (!run_bytes(bytes, config_from_seed(seed0 + r), audit_every)) {
      std::fprintf(stderr, "round %llu (seed %llu) FAILED\n",
                   static_cast<unsigned long long>(r),
                   static_cast<unsigned long long>(seed0 + r));
    }
  }
  if (fi_active) {
    std::printf("injection: %s\n",
                sv::debug::FaultInjector::instance().report().c_str());
    sv::debug::FaultInjector::instance().clear();
  }
  std::printf("opfuzz: %llu rounds x %llu ops, %d failures\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(ops), g_failures);
  return g_failures == 0 ? 0 : 1;
}
