#!/usr/bin/env python3
"""Convert sv-bench JSON reports (bench/* --json=... output) into CSV and
optionally gnuplot scripts for plotting paper-style charts.

Usage:
    build/bench/fig4_mix801010 --json=fig4.json
    tools/plot_results.py fig4.json [fig8.json ...] --outdir plots/ --gnuplot

Each report becomes plots/<bench>.csv: one row per distinct params
combination, one column per result series (SV-HP, FSL, ...) holding that
series' primary metric. Latency reports additionally get
plots/<bench>_latency.csv with the full percentile set per series.

The primary metric is throughput_mops when present, otherwise the first
comparable entry under metrics, otherwise latency_ns.p99.

Schema: see docs/OBSERVABILITY.md and src/benchutil/json_report.h.
"""
import argparse
import json
import os
import re
import sys


def sanitize(s: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", s.strip()).strip("_").lower()


def primary_metric(row):
    """Return (metric_name, value) for a result row, or None."""
    if isinstance(row.get("throughput_mops"), (int, float)):
        return "throughput_mops", row["throughput_mops"]
    metrics = row.get("metrics")
    if isinstance(metrics, dict):
        for k, v in metrics.items():
            if isinstance(v, (int, float)):
                return k, v
    lat = row.get("latency_ns")
    if isinstance(lat, dict) and isinstance(lat.get("p99"), (int, float)):
        return "latency_p99_ns", lat["p99"]
    return None


def pivot(results):
    """Pivot rows: -> (param_cols, series_names, {params_tuple: {series: v}},
    metric_name)."""
    param_cols = []
    series = []
    cells = {}
    metric_name = None
    for row in results:
        pm = primary_metric(row)
        if pm is None:
            continue
        metric_name = metric_name or pm[0]
        name = row.get("name", "?")
        params = row.get("params") or {}
        for k in params:
            if k not in param_cols:
                param_cols.append(k)
        if name not in series:
            series.append(name)
        key = tuple(params.get(k) for k in param_cols)
        cells.setdefault(key, {})[name] = pm[1]
    # Re-key in case later rows introduced new param columns.
    fixed = {}
    for key, vals in cells.items():
        key = key + (None,) * (len(param_cols) - len(key))
        fixed.setdefault(key, {}).update(vals)
    return param_cols, series, fixed, metric_name


def write_csv(path, header, rows):
    with open(path, "w") as f:
        f.write(",".join(str(h) for h in header) + "\n")
        for r in rows:
            f.write(",".join("" if v is None else str(v) for v in r) + "\n")
    print("wrote", path, f"({len(rows)} rows)")


def latency_rows(results):
    rows = []
    for row in results:
        lat = row.get("latency_ns")
        if not isinstance(lat, dict):
            continue
        params = row.get("params") or {}
        rows.append((row.get("name", "?"), params, lat))
    return rows


def emit_gnuplot(outdir, name, param_cols, series, metric_name):
    csv = name + ".csv"
    gp_path = os.path.join(outdir, name + ".gp")
    xcol = param_cols[-1] if param_cols else "row"
    first_series_col = len(param_cols) + 1
    plots = ", ".join(
        f"'{csv}' using 0:{first_series_col + i}:xtic({len(param_cols)}) "
        f"with linespoints title '{s}'"
        for i, s in enumerate(series))
    with open(gp_path, "w") as f:
        f.write("set datafile separator ','\n"
                "set key outside\n"
                "set grid\n"
                f"set ylabel '{metric_name}'\n"
                f"set xlabel '{xcol}'\n"
                "set term pngcairo size 900,540\n"
                f"set output '{name}.png'\n"
                f"plot {plots}\n")
    print("wrote", gp_path)


def process(path, outdir, gnuplot):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "sv-bench":
        print(f"{path}: not an sv-bench report (schema="
              f"{doc.get('schema')!r}); see --help", file=sys.stderr)
        return False
    bench = sanitize(doc.get("bench", os.path.basename(path)))
    results = doc.get("results", [])

    param_cols, series, cells, metric_name = pivot(results)
    if cells:
        header = param_cols + series
        rows = [list(key) + [cells[key].get(s) for s in series]
                for key in cells]
        write_csv(os.path.join(outdir, bench + ".csv"), header, rows)
        if gnuplot and series:
            emit_gnuplot(outdir, bench, param_cols, series, metric_name)

    lat = latency_rows(results)
    if lat:
        fields = ["count", "mean", "p50", "p90", "p99", "p999", "max"]
        pcols = []
        for _, params, _ in lat:
            for k in params:
                if k not in pcols:
                    pcols.append(k)
        header = ["name"] + pcols + fields
        rows = [[name] + [params.get(k) for k in pcols] +
                [h.get(f) for f in fields]
                for name, params, h in lat]
        write_csv(os.path.join(outdir, bench + "_latency.csv"), header, rows)
    if not cells and not lat:
        print(f"{path}: no plottable results", file=sys.stderr)
        return False
    return True


def main():
    ap = argparse.ArgumentParser(
        description="sv-bench JSON -> CSV/gnuplot converter.")
    ap.add_argument("inputs", nargs="+", metavar="REPORT.json",
                    help="sv-bench JSON reports (from a bench --json=... run)")
    ap.add_argument("--outdir", default="plots")
    ap.add_argument("--gnuplot", action="store_true",
                    help="emit .gp scripts next to the CSVs")
    args = ap.parse_args()

    os.makedirs(args.outdir, exist_ok=True)
    ok = True
    for path in args.inputs:
        try:
            ok &= process(path, args.outdir, args.gnuplot)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
