#!/usr/bin/env python3
"""Convert the figure benches' human-readable tables into CSV (and
optionally gnuplot scripts) for plotting paper-style charts.

Usage:
    for b in build/bench/fig*; do $b; done | tee bench_output.txt
    tools/plot_results.py bench_output.txt --outdir plots/

Each detected table becomes plots/<name>.csv; with --gnuplot, a matching
.gp script renders <name>.png (throughput vs threads, one series per
implementation), mirroring the paper's figure layout.
"""
import argparse
import os
import re
import sys


def sanitize(s: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", s.strip()).strip("_").lower()


def parse_tables(lines):
    """Yield (name, header_cols, rows) for every table in the output."""
    name = None
    sub = ""
    header = None
    rows = []

    def flush():
        nonlocal header, rows
        if name and header and rows:
            yield_name = sanitize(name + ("_" + sub if sub else ""))
            out.append((yield_name, header, rows))
        header, rows = None, []

    out = []
    for raw in lines:
        line = raw.rstrip("\n")
        m = re.match(r"^=+\s*(.*?)\s*=+$|^== (.*?) ==$", line)
        if line.startswith("== "):
            flush()
            name = line.strip("= ").strip()
            sub = ""
            continue
        if line.startswith("-- "):
            flush()
            sub = line.strip("- ").strip()
            continue
        cols = line.split()
        if not cols or not line.startswith("  "):
            continue
        if header is None and not re.match(r"^[0-9]", cols[0]):
            header = cols
            continue
        if header is not None:
            # Data row: first token may be like "2^16" or a number/label.
            rows.append(cols)
    flush()
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("input", help="bench output file ('-' for stdin)")
    ap.add_argument("--outdir", default="plots")
    ap.add_argument("--gnuplot", action="store_true",
                    help="emit .gp scripts next to the CSVs")
    args = ap.parse_args()

    text = (sys.stdin if args.input == "-" else open(args.input)).readlines()
    os.makedirs(args.outdir, exist_ok=True)

    tables = parse_tables(text)
    if not tables:
        print("no tables recognized", file=sys.stderr)
        return 1
    for name, header, rows in tables:
        csv_path = os.path.join(args.outdir, name + ".csv")
        with open(csv_path, "w") as f:
            f.write(",".join(header) + "\n")
            for r in rows:
                f.write(",".join(r[:len(header)]) + "\n")
        print("wrote", csv_path, f"({len(rows)} rows)")
        if args.gnuplot and len(header) >= 2:
            gp_path = os.path.join(args.outdir, name + ".gp")
            png = name + ".png"
            series = ", ".join(
                f"'{name}.csv' using 0:{i + 2}:xtic(1) with linespoints "
                f"title '{header[i + 1]}'"
                for i in range(len(header) - 1))
            with open(gp_path, "w") as f:
                f.write("set datafile separator ','\n"
                        "set key outside\n"
                        "set grid\n"
                        f"set ylabel '{header[-1]}'\n"
                        f"set xlabel '{header[0]}'\n"
                        "set term pngcairo size 900,540\n"
                        f"set output '{png}'\n"
                        f"plot {series}\n")
            print("wrote", gp_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
