#!/usr/bin/env sh
# Regenerate the CI bench baselines (ci/baselines/BENCH_*.json).
#
# This script is the single source of truth for the pinned bench
# configurations: the bench-perf CI job runs it with --out-dir . to produce
# the "current" side of the gate, and a maintainer refreshing baselines runs
# it with the default --out-dir so both sides can never drift apart. Policy
# for WHEN to refresh lives in ci/baselines/README.md.
#
# Usage:
#   tools/refresh_baselines.sh [--build-dir DIR] [--out-dir DIR] [--skip-build]
#
#   --build-dir DIR  Release build tree (default: build-rel; configured and
#                    built here unless --skip-build)
#   --out-dir DIR    where BENCH_*.json land (default: ci/baselines)
#   --skip-build     assume the build tree is already built
set -eu

build_dir=build-rel
out_dir=ci/baselines
skip_build=0
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) build_dir=$2; shift 2 ;;
    --out-dir) out_dir=$2; shift 2 ;;
    --skip-build) skip_build=1; shift ;;
    *) echo "refresh_baselines: unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [ "$skip_build" -eq 0 ]; then
  cmake -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j
fi

# Refuse to stamp baselines from a non-Release tree: a debug-built baseline
# would make every future Release run look like a huge improvement and
# defeat the gate.
build_type=$(grep -E '^CMAKE_BUILD_TYPE:' "$build_dir/CMakeCache.txt" |
  cut -d= -f2)
if [ "$build_type" != "Release" ]; then
  echo "refresh_baselines: $build_dir is built as '${build_type:-?}'," \
    "need Release" >&2
  exit 2
fi

mkdir -p "$out_dir"

# ---- Pinned configurations (keep ci/baselines/README.md in sync) ----------
# fig4 carries the hash-sidecar column (--hash, docs/HASH_INDEX.md) across
# the full 1..8 thread ladder: the SV-HP-Hash rows are what pins the
# "sidecar beats SV-HP on the 80/10/10 point mix" claim.
"$build_dir/bench/fig1_sequential" --min-bits=8 --max-bits=16 \
  --seconds=0.1 --trials=2 --json="$out_dir/BENCH_fig1.json"
"$build_dir/bench/fig4_mix801010" --range-bits=16 --threads=1,2,4,8 \
  --seconds=0.3 --trials=4 --hash --json="$out_dir/BENCH_fig4.json"
"$build_dir/bench/fig5_mix05050" --range-bits=16 --threads=2,4 \
  --seconds=0.25 --trials=2 --pool --json="$out_dir/BENCH_fig5.json"
# fig7b carries the layout matrix plus the adaptive sweep: the
# scan_heavy/* and write_heavy/* rows pin "adaptive lands within 10% of
# the best static layout and beats the worst" (docs/TUNING.md). Single
# thread on purpose: with threads > cores, preemption inside seqlock write
# sections turns the sweep cells into scheduler-noise measurements.
"$build_dir/bench/fig7b_sorted_unsorted" --range-bits=14 \
  --sweep-range-bits=14 --threads=1 --seconds=0.4 --trials=5 \
  --json="$out_dir/BENCH_fig7.json"
"$build_dir/bench/fig8_range" --range-bits=16 --spans=10 \
  --threads=2 --seconds=0.2 --json="$out_dir/BENCH_fig8.json"
# fig9 pins the sv::txn transaction layer: the YCSB-T rows gate the
# optimistic-read + NO_WAIT commit path, the TPCC-lite rows gate the
# multi-key RMW mix (and re-check the conservation invariants -- the bench
# exits nonzero on a violation, failing the refresh/gate outright).
"$build_dir/bench/fig9_txn" --rows=65536 --txns=4000 --threads=1,4 \
  --thetas=10,90 --warehouses=1,4 --json="$out_dir/BENCH_fig9.json"

tools/benchdiff.py --validate-only "$out_dir"/BENCH_fig1.json \
  "$out_dir"/BENCH_fig4.json "$out_dir"/BENCH_fig5.json \
  "$out_dir"/BENCH_fig7.json "$out_dir"/BENCH_fig8.json \
  "$out_dir"/BENCH_fig9.json
echo "refresh_baselines: wrote baselines to $out_dir"
