// torture: long-running correctness soak for the skip vector.
//
// Runs a configurable mixed workload for a wall-clock duration while
// periodically pausing the fleet to run the full structural validator and a
// contents audit (every surviving value must carry its key's tag). Designed
// for hours-long soaks and CI smoke alike:
//
//   build/tools/torture --minutes=30 --threads=8 --range=2^16 [...]
//       --check-every=5 --reclaimer=hp
//
// --fi-schedule installs a deterministic fault-injection schedule (e.g.
// "seed=42;pyield=0.1;pfail=0.05") so the soak exercises induced freeze
// failures and forced yields at the structural transition points; see
// docs/FAULT_INJECTION.md.
//
// Exits non-zero on the first violation.
#include <atomic>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/options.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/skip_vector_epoch.h"
#include "debug/fault_inject.h"

namespace {

using sv::benchutil::Options;

struct Violations {
  std::atomic<std::uint64_t> bad_tag{0};
  std::atomic<std::uint64_t> bad_range{0};
  std::atomic<std::uint64_t> bad_nav{0};
};

template <class Map>
int run(Map& map, const Options& opt) {
  const double minutes = opt.f64("minutes", 0.2);
  const auto threads = static_cast<unsigned>(opt.u64("threads", 4));
  const std::uint64_t range = opt.u64("range", 1 << 12);
  const double check_every = opt.f64("check-every", 5.0);  // seconds

  std::atomic<bool> stop{false};
  std::atomic<bool> pause{false};
  std::atomic<unsigned> paused{0};
  Violations v;

  auto tag = [](std::uint64_t k, std::uint64_t payload) {
    return (k << 24) | (payload & 0xFFFFFF);
  };

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sv::Xoshiro256 rng(0x7041 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        if (pause.load(std::memory_order_acquire)) {
          paused.fetch_add(1);
          while (pause.load(std::memory_order_acquire) &&
                 !stop.load(std::memory_order_relaxed)) {
            std::this_thread::yield();
          }
          paused.fetch_sub(1);
          continue;
        }
        const std::uint64_t k = rng.next_below(range);
        switch (rng.next_below(16)) {
          case 0:
          case 1:
          case 2:
            map.insert(k, tag(k, rng.next()));
            break;
          case 3:
          case 4:
            map.remove(k);
            break;
          case 5:
            map.update(k, tag(k, rng.next()));
            break;
          case 6: {
            const std::uint64_t hi = k + rng.next_below(256);
            map.range_for_each(k, hi, [&](std::uint64_t kk, std::uint64_t vv) {
              if (kk < k || kk > hi) v.bad_range.fetch_add(1);
              if ((vv >> 24) != kk) v.bad_tag.fetch_add(1);
            });
            break;
          }
          case 7: {
            auto f = map.floor(k);
            if (f && (f->first > k || (f->second >> 24) != f->first)) {
              v.bad_nav.fetch_add(1);
            }
            auto c = map.ceiling(k);
            if (c && (c->first < k || (c->second >> 24) != c->first)) {
              v.bad_nav.fetch_add(1);
            }
            break;
          }
          default: {
            auto got = map.lookup(k);
            if (got && (*got >> 24) != k) v.bad_tag.fetch_add(1);
          }
        }
      }
    });
  }

  sv::WallTimer total;
  std::uint64_t checks = 0, failures = 0;
  while (total.elapsed_seconds() < minutes * 60) {
    sv::WallTimer interval;
    while (interval.elapsed_seconds() < check_every &&
           total.elapsed_seconds() < minutes * 60) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    // Quiesce the fleet and audit.
    pause.store(true, std::memory_order_release);
    while (paused.load() < threads) std::this_thread::yield();
    const auto rep = map.validate_structure();
    const bool ok = rep.ok();
    std::uint64_t audit_bad = 0;
    std::size_t population = 0;
    map.for_each([&](std::uint64_t k, std::uint64_t vv) {
      ++population;
      if (k >= range || (vv >> 24) != k) ++audit_bad;
    });
    ++checks;
    if (!ok || audit_bad != 0) {
      ++failures;
      std::fprintf(stderr, "CHECK FAILED (audit_bad=%llu):\n%s\n",
                   static_cast<unsigned long long>(audit_bad),
                   rep.to_string().c_str());
    }
    std::printf("[%7.1fs] check #%llu: %s, population=%zu, counters"
                "(restarts=%llu merges=%llu splits=%llu)\n",
                total.elapsed_seconds(),
                static_cast<unsigned long long>(checks),
                ok && audit_bad == 0 ? "ok" : "FAIL", population,
                static_cast<unsigned long long>(map.counters().restarts),
                static_cast<unsigned long long>(map.counters().orphan_merges),
                static_cast<unsigned long long>(
                    map.counters().capacity_splits));
    std::fflush(stdout);
    pause.store(false, std::memory_order_release);
  }
  stop.store(true);
  pause.store(false);
  for (auto& w : workers) w.join();

  const std::uint64_t live_violations =
      v.bad_tag.load() + v.bad_range.load() + v.bad_nav.load();
  std::printf("done: %llu checks, %llu failed; live violations: tag=%llu"
              " range=%llu nav=%llu\n",
              static_cast<unsigned long long>(checks),
              static_cast<unsigned long long>(failures),
              static_cast<unsigned long long>(v.bad_tag.load()),
              static_cast<unsigned long long>(v.bad_range.load()),
              static_cast<unsigned long long>(v.bad_nav.load()));
  return (failures == 0 && live_violations == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "torture: long-running concurrent correctness soak\n"
        "  --minutes=F       soak duration (default 0.2)\n"
        "  --threads=N       worker threads (default 4)\n"
        "  --range=N         key range (default 2^12)\n"
        "  --check-every=F   seconds between quiesced audits (default 5)\n"
        "  --reclaimer=S     hp | ebr | leak (default hp)\n"
        "  --fi-schedule=S   deterministic fault-injection schedule\n"
        "  --t-index=N --t-data=N --layers=N --merge=F  map tuning\n");
    return 0;
  }
  const std::string fi_spec = opt.str("fi-schedule", "");
  if (!fi_spec.empty()) {
    try {
      sv::debug::FaultInjector::instance().install(
          sv::debug::Schedule::parse(fi_spec));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bad --fi-schedule: %s\n", e.what());
      return 2;
    }
  }
  sv::core::Config cfg;
  cfg.target_index_vector_size =
      static_cast<std::uint32_t>(opt.u64("t-index", 8));
  cfg.target_data_vector_size =
      static_cast<std::uint32_t>(opt.u64("t-data", 8));
  cfg.layer_count = static_cast<std::uint32_t>(opt.u64("layers", 5));
  cfg.merge_threshold_factor = opt.f64("merge", 1.67);

  auto finish = [&](int rc) {
    if (!fi_spec.empty()) {
      std::printf("injection: %s\n",
                  sv::debug::FaultInjector::instance().report().c_str());
      sv::debug::FaultInjector::instance().clear();
    }
    return rc;
  };

  const std::string reclaimer = opt.str("reclaimer", "hp");
  if (reclaimer == "hp") {
    sv::core::SkipVector<std::uint64_t, std::uint64_t> m(cfg);
    return finish(run(m, opt));
  }
  if (reclaimer == "ebr") {
    sv::core::SkipVectorEpoch<std::uint64_t, std::uint64_t> m(cfg);
    return finish(run(m, opt));
  }
  if (reclaimer == "leak") {
    sv::core::SkipVectorLeak<std::uint64_t, std::uint64_t> m(cfg);
    return finish(run(m, opt));
  }
  std::fprintf(stderr, "unknown --reclaimer=%s\n", reclaimer.c_str());
  return 2;
}
